// Package repro is TM2C-Go: a reproduction of "TM2C: a Software
// Transactional Memory for Many-Cores" (Gramoli, Guerraoui, Trigonakis,
// EuroSys 2012) as a Go library.
//
// TM2C runs transactions on a non-cache-coherent many-core by turning every
// shared access into message passing against a distributed lock service
// (DS-Lock), with fully decentralized contention management. This package is
// the public facade: it re-exports the supported surface of the internal
// packages — the simulated many-core (System), the transactional runtime
// (Runtime, Tx), the contention-manager policies, and the platform timing
// models (SCC under its five performance settings, and a 48-core Opteron
// multi-core).
//
// A minimal program:
//
//	sys, err := repro.NewSystem(repro.Config{Policy: repro.FairCM})
//	if err != nil { ... }
//	acct := sys.Mem.Alloc(2, 0)
//	sys.Mem.WriteRaw(acct, 100)
//	sys.SpawnWorkers(func(rt *repro.Runtime) {
//		for !rt.Stopped() {
//			rt.Run(func(tx *repro.Tx) {
//				v := tx.Read(acct)
//				tx.Write(acct, v+1)
//			})
//			rt.AddOps(1)
//		}
//	})
//	stats := sys.Run(10 * time.Millisecond)
//	fmt.Printf("%.1f ops/ms, %.1f%% commit rate\n",
//		stats.Throughput(), stats.CommitRate())
//
// Time inside a System is virtual: Run executes the workload on a
// deterministic discrete-event simulation of the target platform, so results
// are reproducible bit-for-bit for a given Config.Seed.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for the paper's
// reproduced figures.
package repro

import (
	"repro/internal/cm"
	"repro/internal/core"
	"repro/internal/mem"
	"repro/internal/noc"
	"repro/internal/placement"
	"repro/internal/sim"
)

// Core system types.
type (
	// System is one simulated TM2C machine; see core.System.
	System = core.System
	// Config configures a System.
	Config = core.Config
	// Runtime is the per-application-core transactional runtime.
	Runtime = core.Runtime
	// Tx is one transaction attempt.
	Tx = core.Tx
	// Irrevocable is the handle of an irrevocable (pessimistic,
	// side-effect-capable) transaction; see Runtime.RunIrrevocable.
	Irrevocable = core.Irrevocable
	// Stats are the counters collected by a run.
	Stats = core.Stats
	// CoreStats is the per-core breakdown inside Stats.
	CoreStats = core.CoreStats
	// Costs are the nominal software costs of the runtime.
	Costs = core.Costs
	// Deployment selects dedicated or multitasked service cores.
	Deployment = core.Deployment
	// AcquireMode selects lazy or eager write-lock acquisition.
	AcquireMode = core.AcquireMode
	// TxKind selects normal or elastic transactions.
	TxKind = core.TxKind
	// Policy is a contention-management policy.
	Policy = cm.Policy
	// PlacementKind selects the object→DTM-node placement policy.
	PlacementKind = placement.Kind
	// PlacementDirectory is the key→DTM-node directory of a System.
	PlacementDirectory = placement.Directory
	// Platform is a timing model (SCC setting or Opteron).
	Platform = noc.Platform
	// Addr is a word address in the simulated shared memory.
	Addr = mem.Addr
	// Time is a virtual timestamp (nanoseconds).
	Time = sim.Time
	// Proc is a simulated process (used by SpawnRaw baselines).
	Proc = sim.Proc
	// Rand is the deterministic per-core random source.
	Rand = sim.Rand
)

// Deployment strategies (§3.1).
const (
	Dedicated = core.Dedicated
	Multitask = core.Multitask
)

// Write-lock acquisition modes (§3.3).
const (
	Lazy  = core.Lazy
	Eager = core.Eager
)

// Transaction kinds (§3.3, §6).
const (
	Normal       = core.Normal
	ElasticEarly = core.ElasticEarly
	ElasticRead  = core.ElasticRead
)

// Contention managers (§4).
const (
	NoCM         = cm.NoCM
	BackoffRetry = cm.BackoffRetry
	OffsetGreedy = cm.OffsetGreedy
	Wholly       = cm.Wholly
	FairCM       = cm.FairCM
)

// Placement policies (internal/placement): the paper's static hash
// (default), contiguous range striping, and epoch-based adaptive
// repartitioning.
const (
	PlacementHash     = placement.Hash
	PlacementRange    = placement.Range
	PlacementAdaptive = placement.Adaptive
)

// NewSystem builds a simulated TM2C machine from cfg. Zero-valued fields
// take the paper's defaults: the SCC under performance setting 0, all 48
// cores, half of them dedicated DTM service cores, lazy write-lock
// acquisition with batching, and the NoCM policy.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// SCC returns the Intel Single-chip Cloud Computer platform under
// performance setting id (0..4, §5.1). Setting 0 is the paper's default;
// setting 1 is the fast "SCC800" configuration of §7.
func SCC(id int) Platform { return noc.SCC(id) }

// Opteron returns the 48-core AMD Opteron multi-core of §7.
func Opteron() Platform { return noc.Opteron() }

// ParsePolicy parses a contention-manager name
// (none|backoff|offset-greedy|wholly|faircm).
func ParsePolicy(s string) (Policy, error) { return cm.Parse(s) }

// ParsePlacement parses a placement policy name (hash|range|adaptive).
func ParsePlacement(s string) (PlacementKind, error) { return placement.Parse(s) }

// NewRand returns a deterministic random source seeded from seed, suitable
// for building workloads outside the simulated machine.
func NewRand(seed uint64) Rand { return sim.NewRand(seed) }

// Policies lists every contention manager in presentation order.
func Policies() []Policy { return append([]Policy(nil), cm.Policies...) }

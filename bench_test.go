// Benchmarks: one testing.B target per table/figure of the paper (run via
// the internal/exp harness at a reduced scale so `go test -bench=.`
// completes in minutes) plus end-to-end transaction micro-benchmarks on the
// public API.
//
// The figure benches report virtual-time throughput of the headline series
// as ops/vms (operations per virtual millisecond) where that is meaningful;
// wall-clock ns/op measures simulator cost, not SCC performance. Full-scale
// figure regeneration is `go run ./cmd/tm2c-bench -run all -scale full`.
package repro_test

import (
	"fmt"
	"strconv"
	"testing"
	"time"

	"repro"
	"repro/internal/exp"
)

// benchScale keeps every figure bench in the tens-of-milliseconds range.
var benchScale = exp.Scale{
	Duration: 1500 * time.Microsecond,
	SizeDiv:  16,
	Cores:    []int{8, 24},
	Seed:     1,
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := exp.ByID(id)
	if !ok {
		b.Fatalf("experiment %q not registered", id)
	}
	var firstVal float64
	for i := 0; i < b.N; i++ {
		tables := e.Run(benchScale, exp.Overrides{})
		if len(tables) == 0 || len(tables[0].Rows) == 0 {
			b.Fatalf("%s produced no data", id)
		}
		row := tables[0].Rows[len(tables[0].Rows)-1]
		if v, err := strconv.ParseFloat(row[len(row)-1], 64); err == nil {
			firstVal = v
		}
	}
	if firstVal != 0 {
		b.ReportMetric(firstVal, "headline")
	}
}

// §5.1 settings table.
func BenchmarkSettingsTable(b *testing.B) { benchExperiment(b, "settings") }

// Figure 4: hash table.
func BenchmarkFig4a(b *testing.B) { benchExperiment(b, "fig4a") }
func BenchmarkFig4b(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig4c(b *testing.B) { benchExperiment(b, "fig4c") }

// Figure 5: bank.
func BenchmarkFig5a(b *testing.B) { benchExperiment(b, "fig5a") }
func BenchmarkFig5b(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig5c(b *testing.B) { benchExperiment(b, "fig5c") }
func BenchmarkFig5d(b *testing.B) { benchExperiment(b, "fig5d") }

// Figure 6: MapReduce.
func BenchmarkFig6a(b *testing.B) { benchExperiment(b, "fig6a") }
func BenchmarkFig6b(b *testing.B) { benchExperiment(b, "fig6b") }

// Figure 7: elastic transactions on the linked list.
func BenchmarkFig7a(b *testing.B) { benchExperiment(b, "fig7a") }
func BenchmarkFig7b(b *testing.B) { benchExperiment(b, "fig7b") }

// Figure 8: portability (SCC vs SCC800 vs Opteron).
func BenchmarkFig8a(b *testing.B) { benchExperiment(b, "fig8a") }
func BenchmarkFig8b(b *testing.B) { benchExperiment(b, "fig8b") }
func BenchmarkFig8c(b *testing.B) { benchExperiment(b, "fig8c") }
func BenchmarkFig8d(b *testing.B) { benchExperiment(b, "fig8d") }

// Ablations beyond the paper.
func BenchmarkAblationBatching(b *testing.B)    { benchExperiment(b, "ablbatch") }
func BenchmarkAblationPollCost(b *testing.B)    { benchExperiment(b, "ablpoll") }
func BenchmarkAblationGranularity(b *testing.B) { benchExperiment(b, "ablgran") }
func BenchmarkAblationSerialRPC(b *testing.B)   { benchExperiment(b, "ablrpc") }

// Extensions beyond the paper.
func BenchmarkExtensionSkipList(b *testing.B)    { benchExperiment(b, "extskip") }
func BenchmarkExtensionIrrevocable(b *testing.B) { benchExperiment(b, "extirrev") }

// BenchmarkTransactionRoundTrip measures the simulator cost of one complete
// read-modify-write transaction (two reads, two writes, commit) end to end.
func BenchmarkTransactionRoundTrip(b *testing.B) {
	for _, cores := range []int{8, 48} {
		b.Run(fmt.Sprintf("cores=%d", cores), func(b *testing.B) {
			sys, err := repro.NewSystem(repro.Config{
				TotalCores: cores,
				Policy:     repro.FairCM,
				Seed:       1,
			})
			if err != nil {
				b.Fatal(err)
			}
			base := sys.Mem.Alloc(1024, 0)
			perCore := b.N/sys.NumAppCores() + 1
			sys.SpawnWorkers(func(rt *repro.Runtime) {
				r := rt.Rand()
				for i := 0; i < perCore; i++ {
					from := repro.Addr(r.Intn(1024))
					to := repro.Addr(r.Intn(1024))
					rt.Run(func(tx *repro.Tx) {
						f := tx.Read(base + from)
						t := tx.Read(base + to)
						tx.Write(base+from, f-1)
						tx.Write(base+to, t+1)
					})
				}
			})
			b.ResetTimer()
			st := sys.RunToCompletion()
			b.ReportMetric(float64(st.Commits)/b.Elapsed().Seconds(), "commits/s")
			b.ReportMetric(float64(sys.K.EventsRun())/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkElasticModes compares the simulator cost of the three
// transaction kinds on a list traversal.
func BenchmarkElasticModes(b *testing.B) {
	for _, kind := range []repro.TxKind{repro.Normal, repro.ElasticEarly, repro.ElasticRead} {
		b.Run(kind.String(), func(b *testing.B) {
			sys, err := repro.NewSystem(repro.Config{TotalCores: 8, Policy: repro.FairCM, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			// 64-node chain.
			nodes := make([]repro.Addr, 64)
			for i := range nodes {
				nodes[i] = sys.Mem.Alloc(2, 0)
				sys.Mem.WriteRaw(nodes[i], uint64(i))
				if i > 0 {
					sys.Mem.WriteRaw(nodes[i-1]+1, uint64(nodes[i]))
				}
			}
			perCore := b.N/sys.NumAppCores() + 1
			sys.SpawnWorkers(func(rt *repro.Runtime) {
				for i := 0; i < perCore; i++ {
					rt.RunKind(kind, func(tx *repro.Tx) {
						cur := nodes[0]
						for cur != 0 {
							n := tx.ReadN(cur, 2)
							cur = repro.Addr(n[1])
						}
					})
				}
			})
			b.ResetTimer()
			sys.RunToCompletion()
		})
	}
}
